"""Parallel experiment runner: the paper suite across a process pool.

Every experiment regenerates one independent figure/table — no state is
shared between them beyond the deterministic artifact cache — so the
full suite parallelizes embarrassingly.  Scheduling is generic over the
registry (:mod:`repro.experiments.registry`): specs flagged ``sharded``
are expanded into their typed :class:`~repro.experiments.registry.CellSpec`
units and scheduled at (scheme x config) **cell** granularity, so no
single experiment dominates the suite's critical path on a multi-core
host.  Workers recompute nothing that another run already measured:
they share the on-disk artifact cache (:mod:`repro.cache`), flushing
newly measured compressed sizes after every task so concurrent and
later workers reuse them — and every finished task (cell or whole
experiment) is memoized in the
:class:`repro.cache.ExperimentResultCache` keyed by a source-tree
fingerprint, so an unchanged task on a re-run is a single disk read
instead of a simulation.  Specs flagged ``cacheable = False`` (live
wall-clock measurements) always re-measure.

Crash safety: the runner never loses a suite to one bad cell.  A cell
that *raises* is a structured :class:`TaskFailure` (kind
``"exception"``); a worker that *dies* mid-cell (segfault, OOM kill,
``os._exit``) is detected by pid liveness, the cell is resubmitted up
to ``task_retries`` times and finally re-run serially in the parent
(``serial_fallback``) before becoming a ``"crash"`` failure; a cell
exceeding ``task_timeout_s`` has its worker SIGKILLed and is retried
the same way, ending in a ``"timeout"`` failure (no serial fallback —
a hang cannot be interrupted in-process).  SIGTERM and
KeyboardInterrupt shut the pool down cleanly: finished experiments
keep their results, unfinished ones get ``"interrupted"`` failures,
and the structured outcome list is still returned.

Used by ``python -m repro.experiments all --jobs N`` and importable
directly::

    from repro.experiments.runner import run_experiments
    outcomes = run_experiments(["fig10", "fig13"], jobs=4, quick=True)
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import threading
import time
from dataclasses import dataclass, field

from .registry import CellSpec, ExperimentResult, experiment, to_jsonable

#: Environment variable overriding :func:`default_jobs` (CI pins it so
#: runner parallelism never depends on the runner host's core count).
JOBS_ENV = "REPRO_JOBS"

#: Parent-side poll cadence for task completion/liveness (seconds).
_POLL_S = 0.02


@dataclass
class TaskFailure:
    """One task's structured failure record (the ``--json`` errors row).

    ``kind`` is one of ``"exception"`` (the cell raised), ``"timeout"``
    (the cell exceeded the per-task budget and its worker was killed),
    ``"crash"`` (the worker process died mid-cell), or
    ``"interrupted"`` (the run was shut down before the cell finished).
    ``attempts`` counts every execution attempt, including the serial
    fallback.
    """

    experiment: str
    cell: str | None
    kind: str
    error: str
    attempts: int = 1

    def to_json(self) -> dict:
        return {
            "experiment": self.experiment,
            "cell": self.cell,
            "kind": self.kind,
            "error": self.error,
            "attempts": self.attempts,
        }


@dataclass
class ExperimentOutcome:
    """One experiment's structured result, rendered text, and timing.

    ``result`` is the experiment's structured result object (``None``
    on failure) — render it with ``rendered`` or serialize it with
    :meth:`to_json`.  ``elapsed_s`` is the experiment's critical-path
    time: the single task for unsharded experiments, the slowest cell
    for sharded ones (cells run concurrently, so their sum is not wall
    time).  ``cached_tasks`` counts tasks served from the persistent
    result cache instead of being re-measured.  ``failures`` carries
    one :class:`TaskFailure` per failed task; ``error`` stays the first
    failure's message (the human-readable summary line).
    """

    name: str
    rendered: str
    elapsed_s: float
    error: str | None = None
    cells: int = 1
    cached_tasks: int = 0
    result: ExperimentResult | None = None
    failures: list[TaskFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_json(self) -> dict:
        """Deterministic JSON-ready view of this outcome.

        Carries the spec's identity, the structured result, and the
        structured failures, but *no* timing or cache telemetry, so the
        serialized document is byte-identical across job counts and
        cache states (the machine-readable contract CI artifacts rely
        on).  Failures are sorted by (cell, kind) because completion
        order depends on scheduling.
        """
        spec = experiment(self.name)
        ordered = sorted(
            self.failures, key=lambda f: (f.cell or "", f.kind, f.error)
        )
        return {
            "id": spec.id,
            "title": spec.title,
            "anchor": spec.anchor,
            "ok": self.ok,
            "error": self.error,
            "errors": [failure.to_json() for failure in ordered],
            "result": to_jsonable(self.result) if self.result is not None else None,
            "rendered": self.rendered if self.ok else None,
        }


#: Worker cap for the paper suite when no experiment hints otherwise.
_SUITE_JOBS_CAP = 8


def default_jobs(names: list[str] | None = None) -> int:
    """Worker count when ``--jobs`` is not given: one per usable core.

    ``REPRO_JOBS`` overrides everything (CI and benchmark harnesses pin
    it for reproducible parallelism).  Otherwise uses the scheduler
    affinity mask (the cgroup/container allowance) rather than the host
    core count, capped per request:

    - the paper suite keeps the conservative cap of 8 — it has only ~20
      schedulable tasks once the scheme-matrix experiments shard into
      cells, and each worker materializes its own full-scale traces and
      systems, so more workers than that only burns memory without
      shortening the critical path;
    - an experiment in ``names`` may raise the cap via its
      ``jobs_hint`` — the fleet tier has hundreds of tiny uniform
      shards and a few-MiB worker footprint, exactly the shape the
      8-worker cap was protecting the suite *from*, so it requests the
      full affinity mask instead.

    The cap only ever rises to the largest hint requested: mixing the
    fleet into a suite run must not starve it of workers, and a
    hint-free request behaves exactly as before.
    """
    raw = os.environ.get(JOBS_ENV)
    if raw:
        try:
            pinned = int(raw)
        except ValueError:
            pinned = 0
        if pinned >= 1:
            return pinned
    try:
        usable = len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        usable = os.cpu_count() or 1
    cap = _SUITE_JOBS_CAP
    for name in names or ():
        hint = experiment(name).jobs_hint
        if hint is not None:
            cap = max(cap, hint)
    return max(1, min(usable, cap))


def _run_task(args: tuple[int, str, str | None, bool]):
    """Worker body: run one whole experiment or one sharded cell.

    Returns ``(group_id, cell_key, payload, elapsed_s, error, cached)``
    where ``payload`` is the structured result object for a whole
    experiment or the picklable cell payload for a sharded cell, and
    ``cached`` counts how many of the task's units came from the
    persistent result cache instead of a fresh measurement (0 or 1 for
    a single cell / unsharded experiment; up to the cell count for a
    sharded experiment run whole on the one-worker path).  Results are memoized per (code
    fingerprint, experiment, cell, args): on an unchanged tree a task
    is one disk read, and any source edit misses wholesale.
    """
    group_id, name, cell_key, quick = args
    # Imported here so "spawn" contexts work and the parent can fork
    # before the (heavier) experiment modules are loaded.
    from .common import flush_artifacts, result_cache

    spec = experiment(name)
    start = time.perf_counter()
    # Live-timing experiments are hardware-truthful only when freshly
    # measured; serving them from disk would present another machine's
    # (or another day's) wall clock as a measurement.
    results = result_cache() if spec.cacheable else None
    run_args = {"quick": quick}
    payload: object = None
    cached = 0
    error = None
    try:
        if cell_key is None and spec.sharded and results is not None:
            # One task covering a whole sharded experiment (the
            # one-worker path).  The cell list may depend on
            # environment knobs (the fleet's size and seed), so the
            # merged result is never memoized under ``cell=None`` —
            # that key cannot distinguish two fleets.  Each cell is
            # served or measured under its own key instead: exactly
            # the entries the multi-worker path and ``run_cached``
            # read and write, so serial and parallel runs share the
            # cache in both directions.
            partials: dict[str, object] = {}
            for key in spec.cell_keys(quick):
                hit = results.load(name, key, run_args)
                if hit is None:
                    hit = spec.run_cell(key, quick=quick)
                    results.store(name, key, run_args, hit)
                else:
                    cached += 1
                partials[key] = hit
            payload = spec.merge(partials, quick=quick)
        else:
            if results is not None:
                hit = results.load(name, cell_key, run_args)
                if hit is not None:
                    payload = hit
                    cached = 1
            if not cached:
                if cell_key is None:
                    payload = spec.run(quick=quick)
                else:
                    payload = spec.run_cell(cell_key, quick=quick)
                if results is not None:
                    results.store(name, cell_key, run_args, payload)
    except Exception as exc:  # surface per-task failures without killing the run
        error = f"{type(exc).__name__}: {exc}"
    flush_artifacts()
    return (
        group_id, cell_key, payload, time.perf_counter() - start, error, cached,
    )


#: Worker-side start-event channel, installed by :func:`_worker_init`.
_events = None


def _worker_init(event_queue) -> None:
    """Pool initializer: register the event channel, reset signals.

    Workers ignore SIGINT so a Ctrl-C lands only in the parent, which
    shuts the pool down deliberately (terminate + structured partial
    results) instead of every process racing its own traceback.

    SIGTERM must go back to the default action: workers fork after the
    parent installs its own SIGTERM->KeyboardInterrupt handler, and
    ``pool.terminate()`` delivers SIGTERM to every worker.  With the
    inherited handler a worker raises KeyboardInterrupt at an arbitrary
    bytecode — possibly while holding the shared task-queue lock — and
    a sibling then blocks on that lock forever, deadlocking the
    parent's ``pool.join()``.
    """
    global _events
    _events = event_queue
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):  # non-main thread / exotic platforms
        pass


def _run_task_tagged(tagged: tuple[int, int, tuple]):
    """Worker body for supervised runs: announce start, then run.

    The start event ``(task_index, attempt, pid)`` is what lets the
    parent attribute a worker death or a timeout to the exact task the
    worker was holding; the ``attempt`` tag lets it discard stale
    results from attempts it already gave up on.
    """
    task_index, attempt, task = tagged
    if _events is not None:
        _events.put((task_index, attempt, os.getpid()))
    return task_index, attempt, _run_task(task)


class _Group:
    """Parent-side bookkeeping for one requested experiment."""

    def __init__(self, name: str, cells: list[CellSpec] | None) -> None:
        self.name = name
        self.cells = cells
        self.partials: dict[str | None, object] = {}
        self.elapsed_s = 0.0
        self.error: str | None = None
        self.cached_tasks = 0
        self.failures: list[TaskFailure] = []
        self.pending = 1 if cells is None else len(cells)

    def consume(
        self,
        cell_key: str | None,
        payload,
        elapsed_s,
        error,
        cached,
        failure: TaskFailure | None = None,
    ) -> bool:
        """Fold in one finished task; True when the group is complete."""
        self.elapsed_s = max(self.elapsed_s, elapsed_s)
        if error is not None and self.error is None:
            self.error = error
        if failure is not None:
            self.failures.append(failure)
        self.cached_tasks += int(cached)
        self.partials[cell_key] = payload
        self.pending -= 1
        return self.pending == 0

    def outcome(self, quick: bool) -> ExperimentOutcome:
        """Render the finished group (merging cells for sharded runs)."""
        result: ExperimentResult | None = None
        if self.error is None:
            try:
                if self.cells is None:
                    result = self.partials.get(None)  # type: ignore[assignment]
                else:
                    result = experiment(self.name).merge(
                        {
                            cell.key: self.partials[cell.key]
                            for cell in self.cells
                        },
                        quick=quick,
                    )
            except Exception as exc:  # pragma: no cover - merge is pure
                self.error = f"{type(exc).__name__}: {exc}"
        return ExperimentOutcome(
            name=self.name,
            rendered=result.render() if result is not None else "",
            elapsed_s=self.elapsed_s,
            error=self.error,
            cells=1 if self.cells is None else len(self.cells),
            cached_tasks=self.cached_tasks,
            result=result,
            failures=list(self.failures),
        )


class _Supervisor:
    """Tracks every submitted task's attempt, worker pid, and deadline."""

    @dataclass
    class _Inflight:
        attempt: int
        handle: object  # multiprocessing AsyncResult
        pid: int | None = None
        deadline: float | None = None

    def __init__(
        self,
        pool,
        events,
        tasks: list[tuple[int, str, str | None, bool]],
        task_timeout_s: float | None,
        task_retries: int,
        serial_fallback: bool,
    ) -> None:
        self.pool = pool
        self.events = events
        self.tasks = tasks
        self.task_timeout_s = task_timeout_s
        self.task_retries = task_retries
        self.serial_fallback = serial_fallback
        self.attempts: dict[int, int] = {}
        self.inflight: dict[int, _Supervisor._Inflight] = {}
        #: True once any attempt was abandoned with its worker killed or
        #: dead.  Such attempts never resolve their AsyncResult, which
        #: stays in ``Pool._cache`` forever — and ``Pool.join()`` only
        #: returns once that cache drains, so the caller must
        #: ``terminate()`` the (idle) pool instead of ``close()`` it.
        self.abandoned_attempts = False

    def submit(self, task_index: int) -> None:
        attempt = self.attempts.get(task_index, 0) + 1
        self.attempts[task_index] = attempt
        handle = self.pool.apply_async(
            _run_task_tagged, ((task_index, attempt, self.tasks[task_index]),)
        )
        self.inflight[task_index] = self._Inflight(attempt=attempt, handle=handle)

    def _drain_events(self) -> None:
        """Match start announcements to inflight attempts."""
        while True:
            try:
                if self.events.empty():
                    return
                task_index, attempt, pid = self.events.get()
            except (OSError, EOFError):  # queue torn down mid-shutdown
                return
            record = self.inflight.get(task_index)
            if record is not None and record.attempt == attempt:
                record.pid = pid
                if self.task_timeout_s is not None:
                    record.deadline = time.monotonic() + self.task_timeout_s

    @staticmethod
    def _pid_alive(pid: int) -> bool:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:  # pragma: no cover - alive, not ours
            return True
        return True

    def _describe(self, task_index: int) -> tuple[str, str | None]:
        _group_id, name, cell_key, _quick = self.tasks[task_index]
        return name, cell_key

    def _retry_or_fail(self, task_index: int, kind: str, detail: str):
        """Resubmit a crashed/hung task, or produce its final failure.

        Returns ``None`` when the task was resubmitted (or handed to
        the serial fallback and succeeded), else the resolved result
        tuple ``(task_index, result, failure)``.
        """
        self.inflight.pop(task_index, None)
        attempts = self.attempts[task_index]
        name, cell_key = self._describe(task_index)
        if attempts <= self.task_retries:
            self.submit(task_index)
            return None
        if kind == "crash" and self.serial_fallback:
            # Last resort for a repeatedly crashing cell: run it in the
            # parent, where a plain exception is catchable.  (A cell
            # that kills *any* process it runs in would take the parent
            # down too — callers that inject such cells on purpose pass
            # serial_fallback=False.)
            attempts += 1
            self.attempts[task_index] = attempts
            result = _run_task(self.tasks[task_index])
            if result[4] is None:
                return task_index, result, None
            failure = TaskFailure(
                experiment=name,
                cell=cell_key,
                kind=kind,
                error=(
                    f"{detail}; serial fallback raised {result[4]} "
                    f"(after {attempts} attempts)"
                ),
                attempts=attempts,
            )
            return task_index, result, failure
        failure = TaskFailure(
            experiment=name,
            cell=cell_key,
            kind=kind,
            error=f"{detail} (after {attempts} attempts)",
            attempts=attempts,
        )
        group_id = self.tasks[task_index][0]
        result = (group_id, cell_key, None, 0.0, failure.error, False)
        return task_index, result, failure

    def poll(self):
        """One supervision pass; yields resolved ``(index, result, failure)``."""
        self._drain_events()
        now = time.monotonic()
        for task_index in list(self.inflight):
            record = self.inflight[task_index]
            handle = record.handle
            if handle.ready():
                self.inflight.pop(task_index)
                try:
                    got_index, got_attempt, result = handle.get()
                except Exception as exc:  # transport failure, not cell failure
                    resolved = self._retry_or_fail(
                        task_index,
                        "crash",
                        f"task transport failed: {type(exc).__name__}: {exc}",
                    )
                    if resolved is not None:
                        yield resolved
                    continue
                if got_index != task_index or got_attempt != record.attempt:
                    continue  # stale attempt we already re-ran
                error = result[4]
                failure = None
                if error is not None:
                    name, cell_key = self._describe(task_index)
                    failure = TaskFailure(
                        experiment=name,
                        cell=cell_key,
                        kind="exception",
                        error=error,
                        attempts=record.attempt,
                    )
                yield task_index, result, failure
                continue
            if record.pid is None:
                continue  # still queued behind other tasks
            if record.deadline is not None and now > record.deadline:
                try:
                    os.kill(record.pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError):
                    pass
                self.abandoned_attempts = True
                resolved = self._retry_or_fail(
                    task_index,
                    "timeout",
                    f"cell exceeded the {self.task_timeout_s:g}s task "
                    f"timeout in worker pid {record.pid}",
                )
                if resolved is not None:
                    yield resolved
                continue
            if not self._pid_alive(record.pid):
                self.abandoned_attempts = True
                resolved = self._retry_or_fail(
                    task_index,
                    "crash",
                    f"worker pid {record.pid} died mid-task",
                )
                if resolved is not None:
                    yield resolved


def _interrupt_failure(task: tuple[int, str, str | None, bool]) -> TaskFailure:
    _group_id, name, cell_key, _quick = task
    return TaskFailure(
        experiment=name,
        cell=cell_key,
        kind="interrupted",
        error="run interrupted before this task finished",
    )


def run_experiments(
    names: list[str],
    jobs: int | None = None,
    quick: bool = False,
    on_result=None,
    task_timeout_s: float | None = None,
    task_retries: int = 1,
    serial_fallback: bool = True,
) -> list[ExperimentOutcome]:
    """Run ``names`` on up to ``jobs`` worker processes; ordered results.

    Sharded experiments are expanded into per-cell tasks whenever more
    than one worker is available — including a *single* requested
    experiment, so ``run_experiments(["fig10"], jobs=4)`` parallelizes
    internally.  ``on_result(outcome)`` fires per finished experiment
    the moment its last task (cell) completes; the returned list is in
    request order regardless of completion order.  With one worker
    everything runs in-process, unsharded (no pool overhead — and no
    crash/timeout supervision, since there is no worker boundary to
    supervise across).  Workers share the on-disk artifact cache, so a
    size measured by one cell is never re-measured by another — across
    this run or the next.

    Failure policy (multi-worker runs): a raising cell yields an
    ``"exception"`` :class:`TaskFailure`; a worker death or a cell
    overrunning ``task_timeout_s`` is retried up to ``task_retries``
    times (crashes additionally fall back to one serial in-parent run
    unless ``serial_fallback`` is off) before yielding a ``"crash"`` /
    ``"timeout"`` failure.  SIGTERM/KeyboardInterrupt terminates the
    pool and returns structured partial results, with unfinished tasks
    marked ``"interrupted"``.
    """
    specs = [experiment(name) for name in names]  # raises on unknown ids
    if task_retries < 0:
        raise ValueError(f"task_retries cannot be negative: {task_retries}")
    workers = jobs if jobs is not None else default_jobs(names)
    tasks: list[tuple[int, str, str | None, bool]] = []
    groups: list[_Group] = []
    for group_id, spec in enumerate(specs):
        cells = spec.cells(quick) if spec.sharded and workers > 1 else []
        if cells:
            groups.append(_Group(spec.id, cells))
            tasks.extend(
                (group_id, spec.id, cell.key, quick) for cell in cells
            )
        else:
            # Unsharded — including the degenerate empty-cells case,
            # which would otherwise create a group no task ever
            # completes.
            groups.append(_Group(spec.id, None))
            tasks.append((group_id, spec.id, None, quick))
    workers = max(1, min(workers, len(tasks)))

    outcomes: dict[int, ExperimentOutcome] = {}

    def consume(result, failure: TaskFailure | None = None) -> None:
        group_id, cell_key, payload, elapsed_s, error, cached = result
        group = groups[group_id]
        if group.consume(cell_key, payload, elapsed_s, error, cached, failure):
            outcome = group.outcome(quick)
            outcomes[group_id] = outcome
            if on_result is not None:
                on_result(outcome)

    def finalize_interrupted(unresolved: list[int]) -> None:
        """Resolve every outstanding task as interrupted."""
        for task_index in unresolved:
            task = tasks[task_index]
            failure = _interrupt_failure(task)
            consume(
                (task[0], task[2], None, 0.0, failure.error, False), failure
            )

    # SIGTERM gets the same clean shutdown as Ctrl-C.  Only the main
    # thread may install handlers; nested/threaded callers run without.
    previous_sigterm = None
    in_main_thread = threading.current_thread() is threading.main_thread()
    if in_main_thread:
        def _on_sigterm(_signum, _frame):
            raise KeyboardInterrupt
        try:
            previous_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)
        except (ValueError, OSError):  # pragma: no cover
            previous_sigterm = None

    try:
        if workers == 1:
            done = 0
            try:
                for task in tasks:
                    result = _run_task(task)
                    error = result[4]
                    failure = None
                    if error is not None:
                        failure = TaskFailure(
                            experiment=task[1],
                            cell=task[2],
                            kind="exception",
                            error=error,
                        )
                    consume(result, failure)
                    done += 1
            except KeyboardInterrupt:
                finalize_interrupted(list(range(done, len(tasks))))
        else:
            # fork keeps warm parent state (imported modules);
            # experiments re-derive everything else from their own
            # contexts.
            ctx = mp.get_context(
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
            events = ctx.SimpleQueue()
            pool = ctx.Pool(
                processes=workers,
                initializer=_worker_init,
                initargs=(events,),
            )
            supervisor = _Supervisor(
                pool, events, tasks, task_timeout_s, task_retries,
                serial_fallback,
            )
            resolved: set[int] = set()
            # Submit in a bounded window rather than queueing every task
            # up front: with many-celled experiments (a 10k-device fleet
            # is hundreds of shards) eager submission would pickle every
            # pending payload into the pool's task queue at once, making
            # parent memory O(tasks).  The window keeps every worker busy
            # (two submitted tasks per worker) while holding in-flight
            # state at O(workers), independent of suite size.
            window = max(2 * workers, workers + 2)
            next_task = 0

            def top_up() -> None:
                nonlocal next_task
                while (
                    next_task < len(tasks)
                    and len(supervisor.inflight) < window
                ):
                    supervisor.submit(next_task)
                    next_task += 1

            try:
                top_up()
                while len(resolved) < len(tasks):
                    progressed = False
                    for task_index, result, failure in supervisor.poll():
                        resolved.add(task_index)
                        consume(result, failure)
                        progressed = True
                    top_up()
                    if len(resolved) < len(tasks) and not progressed:
                        time.sleep(_POLL_S)
                if supervisor.abandoned_attempts:
                    # All tasks are resolved and the workers idle, but
                    # every abandoned attempt left an AsyncResult in
                    # the pool's cache that can never resolve —
                    # close()+join() would wait on it forever.
                    pool.terminate()
                else:
                    pool.close()
                pool.join()
            except KeyboardInterrupt:
                pool.terminate()
                pool.join()
                finalize_interrupted(
                    [i for i in range(len(tasks)) if i not in resolved]
                )
    finally:
        if in_main_thread and previous_sigterm is not None:
            try:
                signal.signal(signal.SIGTERM, previous_sigterm)
            except (ValueError, OSError):  # pragma: no cover
                pass
    return [outcomes[group_id] for group_id in range(len(names))]
