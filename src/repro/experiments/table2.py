"""Table 2: energy consumption under DRAM / ZRAM / SWAP.

Paper shape: over 60 s, ZRAM costs +12.2% (light) / +19.5% (heavy)
energy versus the DRAM baseline, while SWAP is roughly level (+0.3% /
+1.7%).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import run_heavy_scenario, run_light_scenario
from .common import render_table, scenario_build, workload_trace
from .registry import Experiment, ExperimentResult, register


@dataclass
class Table2Result(ExperimentResult):
    """Energy (J) per workload class per scheme."""

    light_j: dict[str, float]
    heavy_j: dict[str, float]

    def normalized(self, workload: str, scheme: str) -> float:
        """Energy relative to the DRAM baseline for one workload class."""
        table = self.light_j if workload == "light" else self.heavy_j
        return table[scheme] / table["DRAM"]

    def render(self) -> str:
        rows = []
        for scheme in ("DRAM", "ZRAM", "SWAP"):
            rows.append(
                [
                    scheme,
                    f"{self.light_j[scheme]:.1f}",
                    f"{self.normalized('light', scheme):.3f}",
                    f"{self.heavy_j[scheme]:.1f}",
                    f"{self.normalized('heavy', scheme):.3f}",
                ]
            )
        table = render_table(
            "Table 2: energy (J) under three swap schemes (60 s scenarios)",
            ["Scheme", "Light (J)", "Light norm", "Heavy (J)", "Heavy norm"],
            rows,
        )
        return (
            f"{table}\n"
            "Paper normalized: ZRAM 1.122 (light) / 1.195 (heavy); "
            "SWAP 1.003 / 1.017"
        )


@register
class Table2(Experiment):
    """Scenario energy for the three baseline schemes."""

    id = "table2"
    title = "Energy under DRAM / ZRAM / SWAP (60 s scenarios)"
    anchor = "Table 2"
    sharded = True

    def cell_keys(self, quick: bool = False) -> list[str]:
        """Independently executable scheme cells (two scenarios per scheme)."""
        return ["DRAM", "ZRAM", "SWAP"]

    def run_cell(self, key: str, quick: bool = False) -> dict[str, float]:
        """Measure one scheme's light and heavy scenario energy (J).

        Each workload class gets its own fresh system (exactly as the
        serial loop built them), so cells are order-independent and safe
        on separate worker processes.
        """
        self._require_cell(key, quick)
        n_apps = 3 if quick else 5
        duration = 20.0 if quick else 60.0
        system = scenario_build(key, workload_trace(n_apps=n_apps))
        light = run_light_scenario(system, duration_s=duration).energy.total_j
        system = scenario_build(key, workload_trace(n_apps=n_apps))
        heavy = run_heavy_scenario(system, duration_s=duration).energy.total_j
        return {"light": light, "heavy": heavy}

    def merge(
        self, cell_results: dict[str, dict[str, float]], quick: bool = False
    ) -> Table2Result:
        """Assemble cell outputs into the table, in scheme order."""
        ordered = self._ordered(cell_results, quick)
        return Table2Result(
            light_j={key: ordered[key]["light"] for key in ordered},
            heavy_j={key: ordered[key]["heavy"] for key in ordered},
        )
