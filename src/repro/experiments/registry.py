"""First-class experiment API: declarative specs, typed cells, and a
machine-readable result contract.

The evaluation is a matrix of (scheme x config x scenario) cells.  This
module makes that matrix a first-class object instead of a module-naming
convention:

- :class:`Experiment` — one paper table/figure as a declarative spec
  (``id``, ``title``, ``anchor``) plus behavior.  Sharded experiments
  override :meth:`Experiment.cell_keys` / :meth:`Experiment.run_cell` /
  :meth:`Experiment.merge`; ``run()`` is *defined* as the serial merge
  of the cells, so the parallel per-cell path is equivalent by
  construction.  Unsharded experiments override
  :meth:`Experiment.compute`.
- :class:`CellSpec` — a typed, hashable, picklable descriptor of one
  independently executable unit of work.  Its ``key`` is the rendered
  column label (stable across processes and runs), which also keys the
  persistent result cache.
- :func:`register` — class decorator that instantiates the spec and
  adds it to the process-wide registry, replacing the three
  hand-maintained dicts (``EXPERIMENTS`` / ``SHARDED_EXPERIMENTS`` /
  ``UNCACHED_EXPERIMENTS``) with ``sharded`` / ``cacheable`` flags on
  the spec itself.
- :class:`ExperimentResult` — the uniform result contract: every
  experiment returns a dataclass that renders the paper-style text
  table (``render()``) *and* serializes to stable JSON-ready data
  (``to_json()``), so outcomes are machine-readable for CI artifacts,
  the result cache, and trend tooling.

Usage::

    from repro.experiments import experiment, all_experiments, select

    experiment("fig10").run(quick=True)       # one figure
    [spec.id for spec in all_experiments()]   # registry, paper order
    select(["fig1*"])                         # glob -> ["fig10", ...]
"""

from __future__ import annotations

import enum
import fnmatch
from abc import ABC, abstractmethod
from dataclasses import dataclass, fields, is_dataclass


def to_jsonable(obj: object) -> object:
    """Recursively convert a result object into JSON-ready data.

    Dataclasses become ``{field: value}`` dicts, enums their names,
    tuples lists, and dict keys are coerced to strings (enum keys by
    name).  The conversion is purely structural — no floats are
    rounded, so the JSON carries exactly the numbers the goldens pin.
    """
    if is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name)) for f in fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.name
    if isinstance(obj, dict):
        return {_json_key(key): to_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(item) for item in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(
        f"result field of type {type(obj).__name__} is not JSON-serializable"
    )


def _json_key(key: object) -> str:
    if isinstance(key, enum.Enum):
        return key.name
    if isinstance(key, str):
        return key
    if isinstance(key, (int, float, bool)):
        return str(key)
    raise TypeError(f"dict key of type {type(key).__name__} cannot key JSON")


class ExperimentResult:
    """Mixin for experiment result dataclasses: the uniform contract.

    Concrete results are dataclasses that define ``render() -> str``
    (the paper-style text table); this mixin adds ``to_json()`` so the
    same object is machine-readable without per-result serializers.
    """

    def render(self) -> str:  # pragma: no cover - every subclass overrides
        raise NotImplementedError

    def to_json(self) -> dict:
        """JSON-ready dict of every field (see :func:`to_jsonable`)."""
        payload = to_jsonable(self)
        assert isinstance(payload, dict)
        return payload


@dataclass(frozen=True)
class CellSpec:
    """One independently executable (scheme x config) unit of work.

    ``key`` is the experiment-stable cell name — in practice the
    rendered column label (``DRAM`` / ``ZRAM`` / an Ariadne config
    label) — identical across processes, runs, and job counts, which is
    what lets it key both worker scheduling and the persistent result
    cache.  The whole spec is hashable and picklable.
    """

    experiment: str
    key: str


class Experiment(ABC):
    """Declarative spec and behavior of one paper table/figure.

    Class attributes declare the spec; subclasses override the behavior
    hooks for their execution shape:

    - unsharded: override :meth:`compute`;
    - sharded: set ``sharded = True`` and override :meth:`cell_keys`,
      :meth:`run_cell`, and :meth:`merge` — ``run()`` is then the serial
      merge of the cells, so the parallel path is equivalent by
      construction, and :meth:`_ordered` gives merge implementations
      the shared in-cell-order filtering previously copy-pasted per
      module.
    """

    #: Stable registry id (``fig10``, ``table2``, ``platform``).
    id: str = ""
    #: One-line human title, shown by ``list``.
    title: str = ""
    #: Where in the paper this lands (``Figure 10``, ``Table 2``, ...).
    anchor: str = ""
    #: Whether the experiment splits into independently executable
    #: cells the runner may schedule on separate worker processes.
    sharded: bool = False
    #: Whether results are deterministic functions of the source tree
    #: and arguments (memoizable).  ``False`` for experiments embedding
    #: live wall-clock measurements — serving those from disk would
    #: present another machine's (or another day's) clock as a
    #: measurement.
    cacheable: bool = True
    #: Worker-count ceiling this experiment benefits from, or ``None``
    #: to accept the runner's conservative suite default.  Set by
    #: many-celled experiments (the fleet tier) whose cells outnumber
    #: the paper suite's tasks; ``default_jobs`` in
    #: :mod:`repro.experiments.runner` raises its cap to the largest
    #: hint among the requested experiments.
    jobs_hint: int | None = None

    # ------------------------------------------------------------ sharding

    def cell_keys(self, quick: bool = False) -> list[str]:
        """Stable keys of this experiment's cells (empty if unsharded)."""
        return []

    def cells(self, quick: bool = False) -> list[CellSpec]:
        """Typed cell descriptors, in merge (column) order."""
        return [CellSpec(self.id, key) for key in self.cell_keys(quick)]

    def run_cell(self, key: str, quick: bool = False) -> object:
        """Execute one cell; the payload must survive pickling."""
        raise NotImplementedError(f"{self.id} is not sharded")

    def merge(
        self, cell_results: dict[str, object], quick: bool = False
    ) -> ExperimentResult:
        """Assemble cell payloads into the figure/table result."""
        raise NotImplementedError(f"{self.id} is not sharded")

    def _ordered(
        self, cell_results: dict[str, object], quick: bool
    ) -> dict[str, object]:
        """Cell results re-keyed into cell order, absent cells dropped."""
        return {
            key: cell_results[key]
            for key in self.cell_keys(quick)
            if key in cell_results
        }

    def _require_cell(self, key: str, quick: bool) -> None:
        """Reject unknown cell keys with a uniform error."""
        if key not in self.cell_keys(quick):
            raise KeyError(f"unknown {self.id} cell {key!r}")

    # ------------------------------------------------------------ execution

    def compute(self, quick: bool = False) -> ExperimentResult:
        """Unsharded experiment body (sharded specs never reach this)."""
        raise NotImplementedError(
            f"{self.id} must override compute() or be sharded"
        )

    def run(self, quick: bool = False) -> ExperimentResult:
        """Produce the full result.

        For sharded experiments this is *defined* as the serial merge
        of the cells, which makes the runner's parallel per-cell path
        equivalent by construction (``tests/test_cell_equivalence.py``
        additionally proves cell independence).
        """
        if self.sharded:
            return self.merge(
                {key: self.run_cell(key, quick) for key in self.cell_keys(quick)},
                quick,
            )
        return self.compute(quick)

    def describe(self) -> dict:
        """The declarative spec as JSON-ready data (``list --json``)."""
        return {
            "id": self.id,
            "title": self.title,
            "anchor": self.anchor,
            "sharded": self.sharded,
            "cacheable": self.cacheable,
            "jobs_hint": self.jobs_hint,
        }


#: The process-wide registry, in registration (paper) order.
_REGISTRY: dict[str, Experiment] = {}


def register(cls: type[Experiment]) -> type[Experiment]:
    """Class decorator: validate, instantiate, and register a spec.

    Importing :mod:`repro.experiments` imports every experiment module,
    so the registry is complete after package import — there is no
    side-table to keep in sync, and double registration (a copy-pasted
    id) fails at import time rather than shadowing silently.
    """
    spec = cls()
    if not spec.id or not spec.title or not spec.anchor:
        raise ValueError(
            f"{cls.__name__} must declare non-empty id, title, and anchor"
        )
    if spec.id in _REGISTRY:
        raise ValueError(f"experiment id {spec.id!r} registered twice")
    if spec.sharded and type(spec).cell_keys is Experiment.cell_keys:
        raise ValueError(f"{spec.id} is sharded but defines no cell_keys()")
    _REGISTRY[spec.id] = spec
    return cls


def experiment(experiment_id: str) -> Experiment:
    """Look up one registered spec by id."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(_REGISTRY) or "<registry empty>"
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def all_experiments() -> list[Experiment]:
    """Every registered spec, in registration (paper) order."""
    return list(_REGISTRY.values())


def experiment_ids() -> list[str]:
    """Registered ids, in registration (paper) order."""
    return list(_REGISTRY)


def select(patterns: list[str]) -> list[str]:
    """Expand names/globs into experiment ids.

    Exact ids pass through (preserving request order and duplicates);
    ``all`` expands to the whole registry; a pattern with glob
    characters expands to its matches in registry order.  A pattern
    matching nothing raises ``KeyError`` — a typo must not silently
    shrink a suite.
    """
    ids = experiment_ids()
    selected: list[str] = []
    for pattern in patterns:
        if pattern == "all":
            selected.extend(ids)
        elif pattern in _REGISTRY:
            selected.append(pattern)
        elif any(ch in pattern for ch in "*?["):
            matches = [name for name in ids if fnmatch.fnmatchcase(name, pattern)]
            if not matches:
                raise KeyError(f"pattern {pattern!r} matches no experiment")
            selected.extend(matches)
        else:
            raise KeyError(
                f"unknown experiment {pattern!r}; try 'list' or a glob"
            )
    return selected


def run_cached(experiment_id: str, quick: bool = False) -> ExperimentResult:
    """Run one whole experiment through the persistent result cache.

    Memo keys are exactly the parallel runner's — ``cell=None`` for an
    unsharded experiment, the per-cell keys for a sharded one — so CLI
    runs, benchmark sessions, and CI share entries in both directions:
    a suite run at ``--jobs 4`` warms the cells a later benchmark
    assembles with a serial merge, and vice versa (``run()`` *is* the
    serial merge of the cells, so the assembled result is identical by
    construction).  Uncacheable specs always re-measure.  Newly
    measured compressed sizes are flushed so a cold run seeds the
    artifact cache the next one reads.
    """
    from .common import flush_artifacts, result_cache

    spec = experiment(experiment_id)
    cache = result_cache() if spec.cacheable else None
    if cache is None:
        return spec.run(quick=quick)
    args = {"quick": quick}
    result: ExperimentResult | None = None
    if spec.sharded:
        # Serve warm cells, measure only the missing ones (stored under
        # the same per-cell keys the runner uses at every job count).
        # Sharded results are never memoized whole under cell=None: a
        # spec's cell list may depend on environment knobs (the fleet's
        # size and seed), which that key cannot distinguish.
        partials: dict[str, object] = {}
        for key in spec.cell_keys(quick):
            payload = cache.load(spec.id, key, args)
            if payload is None:
                payload = spec.run_cell(key, quick=quick)
                cache.store(spec.id, key, args, payload)
            partials[key] = payload
        result = spec.merge(partials, quick=quick)
    else:
        hit = cache.load(spec.id, None, args)
        if hit is not None:
            result = hit  # type: ignore[assignment]
        else:
            result = spec.run(quick=quick)
            cache.store(spec.id, None, args, result)
    flush_artifacts()
    return result
