"""Figure 6: compression/decompression latency and compression ratio as
a function of compression chunk size (128 B .. 128 KB) for LZ4 and LZO.

Paper numbers: ratio climbs from 1.7 to 3.9 as the chunk grows, while
128 B compression is 59.2x (LZ4) / 41.8x (LZO) faster than 128 KB for
the same total volume.

Two latency columns are reported:

- *modeled*: the calibrated Pixel-7-scale latency model (this is the
  paper-comparable number and, by construction, matches the measured
  speedup anchors);
- *wall-clock*: the actual runtime of this repository's pure-Python
  codecs (hardware-truthful for this repo, not for a phone).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..compression import LatencyModel, chunk_compress, get_compressor
from ..units import KIB, SCALE_FACTOR, fmt_chunk
from .common import render_table, workload_trace
from .registry import Experiment, ExperimentResult, register

CHUNK_SIZES = (128, 512, 2 * KIB, 8 * KIB, 32 * KIB, 128 * KIB)

#: The paper compresses 576 MB of anonymous data; we measure on a sample
#: and scale the modeled latency to the paper's volume.
PAPER_VOLUME_BYTES = 576 * 1024 * 1024


@dataclass
class Fig6Point:
    """Measurements at one (codec, chunk size) point."""

    codec: str
    chunk_size: int
    ratio: float
    modeled_comp_s: float
    modeled_decomp_s: float
    wall_comp_s: float
    wall_decomp_s: float


@dataclass
class Fig6Result(ExperimentResult):
    """The full sweep."""

    points: list[Fig6Point]
    sample_bytes: int

    def points_for(self, codec: str) -> list[Fig6Point]:
        """Sweep points of one codec, in chunk-size order."""
        return sorted(
            (p for p in self.points if p.codec == codec),
            key=lambda p: p.chunk_size,
        )

    def speedup_small_vs_large(self, codec: str) -> float:
        """Modeled 128 B vs 128 KB total-compression-time ratio."""
        pts = self.points_for(codec)
        return pts[-1].modeled_comp_s / pts[0].modeled_comp_s

    def ratio_span(self, codec: str) -> tuple[float, float]:
        """(ratio at smallest chunk, ratio at largest chunk)."""
        pts = self.points_for(codec)
        return pts[0].ratio, pts[-1].ratio

    def render(self) -> str:
        rows = [
            [
                p.codec,
                fmt_chunk(p.chunk_size),
                f"{p.ratio:.2f}",
                f"{p.modeled_comp_s:.1f}",
                f"{p.modeled_decomp_s:.1f}",
                f"{p.wall_comp_s:.2f}",
                f"{p.wall_decomp_s:.2f}",
            ]
            for p in sorted(self.points, key=lambda p: (p.codec, p.chunk_size))
        ]
        table = render_table(
            "Figure 6: chunk-size sweep (modeled latency scaled to 576 MB)",
            [
                "Codec",
                "Chunk",
                "Ratio",
                "Comp (model s)",
                "Decomp (model s)",
                "Comp (wall s)",
                "Decomp (wall s)",
            ],
            rows,
        )
        lz4_span = self.ratio_span("lz4")
        lzo_span = self.ratio_span("lzo")
        return (
            f"{table}\n"
            f"modeled 128B-vs-128K comp speedup: lz4 "
            f"{self.speedup_small_vs_large('lz4'):.1f}x (paper 59.2x), lzo "
            f"{self.speedup_small_vs_large('lzo'):.1f}x (paper 41.8x)\n"
            f"ratio span: lz4 {lz4_span[0]:.2f}->{lz4_span[1]:.2f}, "
            f"lzo {lzo_span[0]:.2f}->{lzo_span[1]:.2f} (paper 1.7->3.9)"
        )


@register
class Fig6(Experiment):
    """The chunk-size sweep over sampled anonymous-page payloads.

    Not cacheable: the wall-clock columns time the real codecs with
    ``perf_counter``, so the result is hardware-truthful only at
    measurement time — a replayed wall second would misreport the
    machine it claims to describe.
    """

    id = "fig6"
    title = "Codec latency and ratio vs compression chunk size"
    anchor = "Figure 6"
    cacheable = False

    def compute(self, quick: bool = False) -> Fig6Result:
        """Sweep chunk sizes over sampled anonymous-page payloads."""
        trace = workload_trace(n_apps=5)
        pages_per_app = 24 if quick else 96
        sample = bytearray()
        for app_trace in trace.apps:
            step = max(1, len(app_trace.pages) // pages_per_app)
            for record in app_trace.pages[::step][:pages_per_app]:
                sample += record.payload
        data = bytes(sample)
        model = LatencyModel()
        scale_to_paper = PAPER_VOLUME_BYTES / len(data)
        points = []
        for codec_name in ("lz4", "lzo"):
            codec = get_compressor(codec_name)
            for chunk_size in CHUNK_SIZES:
                start = time.perf_counter()
                blob = chunk_compress(codec, data, chunk_size)
                wall_comp = time.perf_counter() - start
                start = time.perf_counter()
                for chunk in blob.chunks:
                    codec.decompress(chunk.payload, chunk.original_len)
                wall_decomp = time.perf_counter() - start
                points.append(
                    Fig6Point(
                        codec=codec_name,
                        chunk_size=chunk_size,
                        ratio=blob.ratio,
                        modeled_comp_s=model.compress_ns(
                            codec_name, len(data), chunk_size
                        )
                        * scale_to_paper
                        / 1e9,
                        modeled_decomp_s=model.decompress_ns(
                            codec_name, len(data), chunk_size
                        )
                        * scale_to_paper
                        / 1e9,
                        wall_comp_s=wall_comp,
                        wall_decomp_s=wall_decomp,
                    )
                )
        return Fig6Result(points=points, sample_bytes=len(data))
