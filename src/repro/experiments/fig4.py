"""Figure 4: hot/warm/cold proportions per compression-order part.

The paper sorts all data ZRAM compressed by compression time, splits it
into ten equal parts, and shows that hot data appears even in the very
first parts — LRU does not know about hotness, so the launch working set
(cold-looking by recency, hot by future use) is compressed first.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mem.page import Hotness
from ..trace.analyze import hotness_mix_by_part
from .common import FIGURE_APPS, build, render_table, workload_trace
from .registry import Experiment, ExperimentResult, register


@dataclass
class Fig4Result(ExperimentResult):
    """Per-app hotness mix per compression-order part (part 0 first)."""

    n_parts: int
    mixes: dict[str, list[dict[Hotness, float]]]

    def hot_share_in_first_part(self, app: str) -> float:
        """Fraction of part-0 data that is ground-truth hot."""
        return self.mixes[app][0][Hotness.HOT]

    def render(self) -> str:
        blocks = []
        for app, parts in self.mixes.items():
            rows = [
                [
                    str(index),
                    f"{mix[Hotness.HOT]:.2f}",
                    f"{mix[Hotness.WARM]:.2f}",
                    f"{mix[Hotness.COLD]:.2f}",
                ]
                for index, mix in enumerate(parts)
            ]
            blocks.append(
                render_table(
                    f"Figure 4 ({app}): hotness mix by compression order",
                    ["Part", "Hot", "Warm", "Cold"],
                    rows,
                )
            )
        blocks.append(
            "Paper shape: part 0 already contains a significant share of "
            "hot data (LRU is hotness-blind)."
        )
        return "\n\n".join(blocks)


@register
class Fig4(Experiment):
    """ZRAM's compression order bucketed by ground-truth hotness."""

    id = "fig4"
    title = "Hotness mix per compression-order part under ZRAM"
    anchor = "Figure 4"

    def compute(self, quick: bool = False) -> Fig4Result:
        """Run the ZRAM baseline under pressure and bucket its
        compression log by ground-truth hotness."""
        apps = FIGURE_APPS[:3] if quick else FIGURE_APPS
        trace = workload_trace(n_apps=5)
        system = build("ZRAM", trace)
        system.launch_all()
        # Cycle through a round of relaunches so recompression happens too.
        for target in apps:
            system.relaunch(target, 0)
        mixes = {}
        for app_name in apps:
            uid = trace.app(app_name).uid
            ordered = [
                hotness for log_uid, hotness in system.scheme.compression_log
                if log_uid == uid
            ]
            if ordered:
                mixes[app_name] = hotness_mix_by_part(ordered, n_parts=10)
        return Fig4Result(n_parts=10, mixes=mixes)
