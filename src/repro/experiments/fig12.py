"""Figure 12: compression and decompression latency per scheme.

Paper numbers (LZO): Ariadne-1K-2K-16K cuts decompression latency by
~60% for YouTube/Twitter and ~90% for BangDream; compression latency
drops ~20% for hot-heavy apps under EHL, while BangDream's compression
can grow (more data in large chunks).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compression import LatencyModel, get_compressor
from ..core import AriadneConfig, RelaunchScenario
from ..units import KIB
from .common import FIGURE_APPS, _SHARED_SIZES, render_table, workload_trace
from .codec_profile import CodecProfile, profile_app

SCHEMES: tuple[AriadneConfig | None, ...] = (
    None,  # ZRAM
    AriadneConfig(small_size=1 * KIB, medium_size=2 * KIB, large_size=16 * KIB,
                  scenario=RelaunchScenario.EHL),
    AriadneConfig(small_size=1 * KIB, medium_size=2 * KIB, large_size=16 * KIB,
                  scenario=RelaunchScenario.AL),
)


@dataclass
class Fig12Result:
    """Comp/decomp latency per (scheme, app), paper scale (ms)."""

    profiles: list[CodecProfile]

    def profile(self, scheme: str, app: str) -> CodecProfile:
        for entry in self.profiles:
            if entry.scheme == scheme and entry.app == app:
                return entry
        raise KeyError((scheme, app))

    def decomp_reduction(self, scheme: str, app: str) -> float:
        """Decompression-latency reduction versus ZRAM."""
        zram = self.profile("ZRAM", app)
        ours = self.profile(scheme, app)
        return 1.0 - ours.decomp_ms / zram.decomp_ms

    def render(self) -> str:
        rows = [
            [p.scheme, p.app, f"{p.comp_ms:.0f}", f"{p.decomp_ms:.0f}"]
            for p in self.profiles
        ]
        table = render_table(
            "Figure 12: codec latency per scheme (trace-fed, LZO, ms)",
            ["Scheme", "App", "CompTime", "DecompTime"],
            rows,
        )
        ehl = SCHEMES[1].label
        notes = ", ".join(
            f"{app} -{self.decomp_reduction(ehl, app):.0%}"
            for app in {p.app for p in self.profiles}
        )
        return (
            f"{table}\ndecomp reduction vs ZRAM ({ehl}): {notes} "
            f"(paper: -60% YouTube/Twitter, -90% BangDream)"
        )


def run(quick: bool = False) -> Fig12Result:
    """Feed trace data to the codecs under each scheme's chunk policy."""
    apps = FIGURE_APPS[:3] if quick else FIGURE_APPS
    trace = workload_trace(n_apps=5)
    codec = get_compressor("lzo")
    model = LatencyModel()
    cache = _SHARED_SIZES
    profiles = []
    for config in SCHEMES:
        for app_name in apps:
            profiles.append(
                profile_app(trace.app(app_name), config, codec, model, cache)
            )
    return Fig12Result(profiles=profiles)
