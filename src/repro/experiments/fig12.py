"""Figure 12: compression and decompression latency per scheme.

Paper numbers (LZO): Ariadne-1K-2K-16K cuts decompression latency by
~60% for YouTube/Twitter and ~90% for BangDream; compression latency
drops ~20% for hot-heavy apps under EHL, while BangDream's compression
can grow (more data in large chunks).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import AriadneConfig, RelaunchScenario
from ..units import KIB
from .common import FIGURE_APPS, _SHARED_SIZES, render_table, workload_trace
from .codec_profile import (
    CodecProfile,
    sweep_cell,
    sweep_cell_keys,
    sweep_merge,
)
from .registry import Experiment, ExperimentResult, register

SCHEMES: tuple[AriadneConfig | None, ...] = (
    None,  # ZRAM
    AriadneConfig(small_size=1 * KIB, medium_size=2 * KIB, large_size=16 * KIB,
                  scenario=RelaunchScenario.EHL),
    AriadneConfig(small_size=1 * KIB, medium_size=2 * KIB, large_size=16 * KIB,
                  scenario=RelaunchScenario.AL),
)


@dataclass
class Fig12Result(ExperimentResult):
    """Comp/decomp latency per (scheme, app), paper scale (ms)."""

    profiles: list[CodecProfile]

    def profile(self, scheme: str, app: str) -> CodecProfile:
        for entry in self.profiles:
            if entry.scheme == scheme and entry.app == app:
                return entry
        raise KeyError((scheme, app))

    def decomp_reduction(self, scheme: str, app: str) -> float:
        """Decompression-latency reduction versus ZRAM."""
        zram = self.profile("ZRAM", app)
        ours = self.profile(scheme, app)
        return 1.0 - ours.decomp_ms / zram.decomp_ms

    def render(self) -> str:
        rows = [
            [p.scheme, p.app, f"{p.comp_ms:.0f}", f"{p.decomp_ms:.0f}"]
            for p in self.profiles
        ]
        table = render_table(
            "Figure 12: codec latency per scheme (trace-fed, LZO, ms)",
            ["Scheme", "App", "CompTime", "DecompTime"],
            rows,
        )
        ehl = SCHEMES[1].label
        # First-appearance order (the table's own row order): a set here
        # would make the note order vary with the process hash seed,
        # breaking the byte-stable JSON contract.
        apps = dict.fromkeys(p.app for p in self.profiles)
        notes = ", ".join(
            f"{app} -{self.decomp_reduction(ehl, app):.0%}" for app in apps
        )
        return (
            f"{table}\ndecomp reduction vs ZRAM ({ehl}): {notes} "
            f"(paper: -60% YouTube/Twitter, -90% BangDream)"
        )


@register
class Fig12(Experiment):
    """Trace-fed codec latency under each scheme's chunk policy."""

    id = "fig12"
    title = "Codec latency per scheme (trace-fed, LZO)"
    anchor = "Figure 12"
    sharded = True

    def cell_keys(self, quick: bool = False) -> list[str]:
        """Independently executable scheme cells (one codec sweep each)."""
        return sweep_cell_keys(SCHEMES)

    def run_cell(self, key: str, quick: bool = False) -> list[CodecProfile]:
        """Profile every app under one scheme's chunk policy (see
        :func:`repro.experiments.codec_profile.sweep_cell`)."""
        apps = FIGURE_APPS[:3] if quick else FIGURE_APPS
        trace = workload_trace(n_apps=5)
        return sweep_cell(
            SCHEMES, key, [trace.app(app) for app in apps], _SHARED_SIZES
        )

    def merge(
        self, cell_results: dict[str, list[CodecProfile]], quick: bool = False
    ) -> Fig12Result:
        """Concatenate cell outputs in scheme order (the serial row order)."""
        return Fig12Result(profiles=sweep_merge(SCHEMES, cell_results))
