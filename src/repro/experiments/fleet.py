"""Fleet experiment: population percentiles over N sampled devices.

Not a paper figure — the population tier of the reproduction: the
paper's relaunch-latency and kswapd-CPU claims are averages over many
apps and devices, and this experiment measures them as fleet
percentiles (p50/p95/p99 per scheme) over a seeded synthetic device
population (:mod:`repro.fleet`).

Sharding is by *device range*, not by scheme: each cell simulates a
contiguous shard of :data:`SHARD_SIZE` devices and returns one
fixed-size :class:`~repro.fleet.FleetAggregate`, so worker startup and
trace construction amortize across the shard and the in-flight payload
per cell is O(1) regardless of shard size.  Cell keys embed the fleet
seed and the absolute device range (``s404-d000000-000050``) and never
the fleet size, so growing ``REPRO_FLEET_DEVICES`` leaves every
existing shard's key — and its entry in the persistent result cache —
intact: an incremental re-run simulates only the new ranges.

The merged result carries only mergeable summaries (count/sum/min/max,
fixed-bucket histograms, seeded bounded reservoirs): aggregator memory
and the ``--json`` document are independent of device count, and every
quantity is integer-derived, so the document is byte-identical across
``--jobs`` counts, shard orders, and cold/warm cache.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..fleet import (
    FLEET_METRICS,
    FleetAggregate,
    fleet_device_count,
    fleet_seed,
    run_shard,
)
from ..fleet.population import SCHEME_MIX
from ..units import MIB
from .common import render_table
from .registry import Experiment, ExperimentResult, register

#: Devices per cell.  Large enough to amortize worker startup and trace
#: construction across a shard, small enough that a quick fleet (200
#: devices) still spreads across several workers.
SHARD_SIZE = 50

_KEY_PATTERN = re.compile(r"^s(-?\d+)-d(\d{6})-(\d{6})$")


def shard_key(seed: int, start: int, stop: int) -> str:
    """The cell key of devices ``[start, stop)`` under ``seed``."""
    return f"s{seed}-d{start:06d}-{stop:06d}"


def parse_shard_key(key: str) -> tuple[int, int, int]:
    """Invert :func:`shard_key`; raises ``KeyError`` on malformed keys."""
    match = _KEY_PATTERN.match(key)
    if match is None:
        raise KeyError(f"unknown fleet cell {key!r}")
    seed, start, stop = (int(group) for group in match.groups())
    if not 0 <= start < stop:
        raise KeyError(f"fleet cell {key!r} has an empty or negative range")
    return seed, start, stop


@dataclass
class MetricStats:
    """Percentile view of one (scheme, metric) summary (native units)."""

    count: int
    total: int
    mean: float
    p50: float
    p95: float
    p99: float
    minimum: int
    maximum: int


@dataclass
class FleetResult(ExperimentResult):
    """Population percentiles per scheme plus the merged aggregate."""

    fleet_seed: int
    devices: int
    shard_size: int
    shards: int
    aggregate: FleetAggregate
    #: scheme -> metric -> stats, derived from ``aggregate`` at merge.
    stats: dict[str, dict[str, MetricStats]]

    def _schemes(self) -> list[str]:
        order = [scheme for scheme, _ in SCHEME_MIX]
        present = [s for s in order if s in self.stats]
        return present + sorted(set(self.stats) - set(present))

    def render(self) -> str:
        rows = []
        for scheme in self._schemes():
            relaunch = self.stats[scheme]["relaunch_ns"]
            kswapd = self.stats[scheme]["kswapd_cpu_ns"]
            flash = self.stats[scheme]["flash_written_bytes"]
            kills = self.stats[scheme]["kills"]
            rows.append([
                scheme,
                str(kswapd.count),
                str(relaunch.count),
                f"{relaunch.p50 / 1e6:.1f}",
                f"{relaunch.p95 / 1e6:.1f}",
                f"{relaunch.p99 / 1e6:.1f}",
                f"{kswapd.mean / 1e6:.1f}",
                f"{flash.mean / MIB:.2f}",
                str(int(kills.total)),
            ])
        table = render_table(
            f"Fleet percentiles: {self.devices} devices "
            f"(seed {self.fleet_seed}, {self.shards} shards of "
            f"{self.shard_size})",
            ["Scheme", "Devices", "Relaunches", "p50 (ms)", "p95 (ms)",
             "p99 (ms)", "kswapd mean (ms)", "flash wr (MiB)", "Kills"],
            rows,
        )
        ledger = (
            "pressure ledger balanced across "
            f"{self.aggregate.pressure_devices} tight-RAM devices"
            if self.aggregate.ledger_consistent
            else "PRESSURE LEDGER INCONSISTENT"
        )
        return f"{table}\n{ledger}"


@register
class Fleet(Experiment):
    """Device-range-sharded population sweep with streaming aggregation."""

    id = "fleet"
    title = "Fleet percentiles over a sampled device population"
    anchor = "fleet"
    sharded = True
    #: Fleet shards vastly outnumber the paper suite's ~20 tasks, and
    #: each worker's footprint is a few tiny traces — so this tier asks
    #: the runner for full CPU affinity instead of the suite's 8-worker
    #: cap (see :func:`repro.experiments.runner.default_jobs`).
    jobs_hint = 64

    def cell_keys(self, quick: bool = False) -> list[str]:
        seed = fleet_seed()
        devices = fleet_device_count(quick)
        return [
            shard_key(seed, start, min(start + SHARD_SIZE, devices))
            for start in range(0, devices, SHARD_SIZE)
        ]

    def run_cell(self, key: str, quick: bool = False) -> FleetAggregate:
        """Simulate one device shard.

        The key is self-describing (seed + absolute range), so a cell
        is a pure function of its key alone: cached payloads stay
        valid across fleet-size changes and can never be served to a
        different seed's fleet.
        """
        seed, start, stop = parse_shard_key(key)
        return run_shard(seed, start, stop)

    def merge(
        self, cell_results: dict, quick: bool = False
    ) -> FleetResult:
        ordered = self._ordered(cell_results, quick)
        merged = FleetAggregate()
        for aggregate in ordered.values():
            merged = merged.merge(aggregate)
        merged = merged.normalized()
        stats = {
            scheme: {
                metric: _stats(merged.by_scheme[scheme][metric])
                for metric in FLEET_METRICS
                if metric in merged.by_scheme[scheme]
            }
            for scheme in merged.by_scheme
        }
        return FleetResult(
            fleet_seed=fleet_seed(),
            devices=merged.devices,
            shard_size=SHARD_SIZE,
            shards=len(ordered),
            aggregate=merged,
            stats=stats,
        )


def _stats(summary) -> MetricStats:
    return MetricStats(
        count=summary.count,
        total=summary.total,
        mean=summary.mean,
        p50=summary.quantile(0.50),
        p95=summary.quantile(0.95),
        p99=summary.quantile(0.99),
        minimum=summary.minimum if summary.minimum is not None else 0,
        maximum=summary.maximum if summary.maximum is not None else 0,
    )
