"""Table 1: anonymous data volume of five applications at 10 s / 5 min."""

from __future__ import annotations

from dataclasses import dataclass

from ..units import PAGE_SIZE, SCALE_FACTOR
from ..workload import profile_by_name
from .common import FIGURE_APPS, render_table, workload_trace
from .registry import Experiment, ExperimentResult, register


@dataclass
class Table1Row:
    """One application's measured anonymous-data volumes."""

    app: str
    measured_10s_mb: float
    measured_5min_mb: float
    paper_10s_mb: float
    paper_5min_mb: float


@dataclass
class Table1Result(ExperimentResult):
    """Anonymous-data volumes (paper-scale MB)."""

    rows: list[Table1Row]

    def render(self) -> str:
        return render_table(
            "Table 1: anonymous data volume (MB), measured vs paper",
            ["App", "10s (meas)", "10s (paper)", "5min (meas)", "5min (paper)"],
            [
                [
                    row.app,
                    f"{row.measured_10s_mb:.0f}",
                    f"{row.paper_10s_mb:.0f}",
                    f"{row.measured_5min_mb:.0f}",
                    f"{row.paper_5min_mb:.0f}",
                ]
                for row in self.rows
            ],
        )


@register
class Table1(Experiment):
    """Generated anonymous-data volumes versus the paper's Table 1."""

    id = "table1"
    title = "Anonymous data volume at 10 s / 5 min"
    anchor = "Table 1"

    def compute(self, quick: bool = False) -> Table1Result:
        """Measure generated anonymous-data volume at the paper's two
        sampling points and compare with Table 1."""
        trace = workload_trace(n_apps=5)
        rows = []
        for name in FIGURE_APPS:
            app_trace = trace.app(name)
            profile = profile_by_name(name)
            pages_10s = app_trace.pages_created_by(10.0)
            pages_5min = app_trace.pages_created_by(300.0)
            to_mb = PAGE_SIZE * SCALE_FACTOR / (1024 * 1024)
            rows.append(
                Table1Row(
                    app=name,
                    measured_10s_mb=pages_10s * to_mb,
                    measured_5min_mb=pages_5min * to_mb,
                    paper_10s_mb=profile.anon_mb_10s,
                    paper_5min_mb=profile.anon_mb_5min,
                )
            )
        return Table1Result(rows=rows)
