"""Figure 13: compression ratio per scheme.

Paper shape: Ariadne-EHL-1K-4K-16K beats ZRAM's ratio for every app
(large cold chunks compress better); Ariadne-AL-512-2K-16K roughly ties
ZRAM (small hot chunks give some ratio back).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import AriadneConfig, RelaunchScenario
from ..units import KIB
from .common import FIGURE_APPS, _SHARED_SIZES, render_table, workload_trace
from .codec_profile import (
    CodecProfile,
    sweep_cell,
    sweep_cell_keys,
    sweep_merge,
)
from .registry import Experiment, ExperimentResult, register

SCHEMES: tuple[AriadneConfig | None, ...] = (
    None,  # ZRAM
    AriadneConfig(small_size=1 * KIB, medium_size=4 * KIB, large_size=16 * KIB,
                  scenario=RelaunchScenario.EHL),
    AriadneConfig(small_size=512, medium_size=2 * KIB, large_size=16 * KIB,
                  scenario=RelaunchScenario.AL),
)


@dataclass
class Fig13Result(ExperimentResult):
    """Compression ratio per (scheme, app)."""

    profiles: list[CodecProfile]

    def ratio(self, scheme: str, app: str) -> float:
        for entry in self.profiles:
            if entry.scheme == scheme and entry.app == app:
                return entry.ratio
        raise KeyError((scheme, app))

    @property
    def apps(self) -> list[str]:
        seen = []
        for entry in self.profiles:
            if entry.app not in seen:
                seen.append(entry.app)
        return seen

    def ehl_beats_zram_everywhere(self) -> bool:
        """The paper's headline Figure 13 claim."""
        ehl = SCHEMES[1].label
        return all(self.ratio(ehl, app) > self.ratio("ZRAM", app)
                   for app in self.apps)

    def render(self) -> str:
        schemes = ["ZRAM", SCHEMES[1].label, SCHEMES[2].label]
        rows = [
            [scheme] + [f"{self.ratio(scheme, app):.2f}" for app in self.apps]
            for scheme in schemes
        ]
        table = render_table(
            "Figure 13: compression ratio (higher is better)",
            ["Scheme"] + self.apps,
            rows,
        )
        verdict = (
            "EHL-1K-4K-16K > ZRAM for every app"
            if self.ehl_beats_zram_everywhere()
            else "WARNING: EHL-1K-4K-16K does not beat ZRAM everywhere"
        )
        return f"{table}\n{verdict} (paper: consistently better)"


@register
class Fig13(Experiment):
    """Real compressed sizes under each scheme's chunk policy."""

    id = "fig13"
    title = "Compression ratio per scheme"
    anchor = "Figure 13"
    sharded = True

    def cell_keys(self, quick: bool = False) -> list[str]:
        """Independently executable scheme cells (one codec sweep each)."""
        return sweep_cell_keys(SCHEMES)

    def run_cell(self, key: str, quick: bool = False) -> list[CodecProfile]:
        """Profile every app under one scheme's chunk policy (see
        :func:`repro.experiments.codec_profile.sweep_cell`)."""
        apps = FIGURE_APPS[:3] if quick else FIGURE_APPS
        trace = workload_trace(n_apps=5)
        return sweep_cell(
            SCHEMES, key, [trace.app(app) for app in apps], _SHARED_SIZES
        )

    def merge(
        self, cell_results: dict[str, list[CodecProfile]], quick: bool = False
    ) -> Fig13Result:
        """Concatenate cell outputs in scheme order (the serial row order)."""
        return Fig13Result(profiles=sweep_merge(SCHEMES, cell_results))
