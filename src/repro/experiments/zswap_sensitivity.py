"""ZSWAP sensitivity: reclaim batch size × readahead window × devices.

Sweeps the three :class:`~repro.core.ZswapConfig` knobs the writeback
tier exposes and reports the counters that make each knob's mechanism
visible:

- ``swap_cluster_max`` — smaller batches mean more writeback rounds for
  the same page count (``zswap_writeback_batches`` rises, max batch
  falls);
- ``page_cluster`` — 0 disables readahead entirely (zero speculative
  reads); 3 reads up to a 8-slot window per fault and the hit/waste
  split shows how much of that speculation pays off;
- ``n_devices`` — writeback batches round-robin across devices, so the
  per-device sequential write command counts should stripe near-evenly.

Every cell replays the identical trace on the identical tight-zpool
platform (:func:`~repro.experiments.zswap_compare.tight_zpool_platform`)
so differences are attributable to the knob alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import ZswapConfig
from ..metrics import zswap_summary
from ..sim.scenario import run_light_scenario
from .registry import Experiment, ExperimentResult, register
from .zswap_compare import build_tight

#: (swap_cluster_max, page_cluster, n_devices) points, full sweep.
_FULL_GRID = tuple(
    (cluster, page_cluster, devices)
    for cluster in (8, 32)
    for page_cluster in (0, 3)
    for devices in (1, 2)
)

#: Quick suite keeps the default batch size and sweeps the other knobs.
_QUICK_GRID = tuple(point for point in _FULL_GRID if point[0] == 32)

_DURATION_S = 10.0


def _key(cluster: int, page_cluster: int, devices: int) -> str:
    return f"c{cluster}-p{page_cluster}-d{devices}"


@dataclass
class SensitivityCell:
    """One configuration point's measured outcome (picklable)."""

    key: str
    cluster: int
    page_cluster: int
    devices: int
    mean_latency_ms: float
    writeback_batches: int
    pages_written_back: int
    batch_pages_max: int
    readahead_reads: int
    readahead_hits: int
    readahead_wasted: int
    write_commands_by_device: tuple[int, ...]


@dataclass
class ZswapSensitivityResult(ExperimentResult):
    """The sweep table."""

    cells: dict[str, SensitivityCell]

    def render(self) -> str:
        from .common import render_table

        rows = []
        for cell in self.cells.values():
            stripe = "/".join(str(n) for n in cell.write_commands_by_device)
            rows.append([
                cell.key,
                f"{cell.mean_latency_ms:.1f}",
                str(cell.writeback_batches),
                str(cell.pages_written_back),
                str(cell.batch_pages_max),
                str(cell.readahead_reads),
                str(cell.readahead_hits),
                str(cell.readahead_wasted),
                stripe,
            ])
        return render_table(
            "ZSWAP sensitivity: cluster size x page-cluster x devices",
            ["Config", "Mean (ms)", "Batches", "Pages WB", "Max batch",
             "RA reads", "RA hits", "RA wasted", "Wr cmds/dev"],
            rows,
        )


@register
class ZswapSensitivity(Experiment):
    """Knob sweep for the ZSWAP writeback tier."""

    id = "zswap_sensitivity"
    title = "ZSWAP sensitivity: batch size, readahead window, devices"
    anchor = "roadmap-2"
    sharded = True

    def _grid(self, quick: bool):
        return _QUICK_GRID if quick else _FULL_GRID

    def cell_keys(self, quick: bool = False) -> list[str]:
        return [_key(*point) for point in self._grid(quick)]

    def run_cell(self, key: str, quick: bool = False) -> SensitivityCell:
        """One config point; cells are fully independent."""
        self._require_cell(key, quick)
        point = dict(zip(self.cell_keys(quick), self._grid(quick)))[key]
        cluster, page_cluster, devices = point
        config = ZswapConfig(
            swap_cluster_max=cluster,
            page_cluster=page_cluster,
            n_devices=devices,
        )
        system = build_tight("ZSWAP", zswap_config=config)
        result = run_light_scenario(system, duration_s=_DURATION_S)
        latencies = [r.latency_ms for r in result.relaunches]
        summary = zswap_summary(result.counters)
        return SensitivityCell(
            key=key,
            cluster=cluster,
            page_cluster=page_cluster,
            devices=devices,
            mean_latency_ms=(
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            writeback_batches=summary["zswap_writeback_batches"],
            pages_written_back=summary["zswap_pages_written_back"],
            batch_pages_max=summary["zswap_batch_pages_max"],
            readahead_reads=summary["zswap_readahead_reads"],
            readahead_hits=summary["zswap_readahead_hits"],
            readahead_wasted=summary["zswap_readahead_wasted"],
            write_commands_by_device=(
                system.ctx.flash_swap.write_commands_by_device()
            ),
        )

    def merge(
        self, cell_results: dict, quick: bool = False
    ) -> ZswapSensitivityResult:
        return ZswapSensitivityResult(
            cells=self._ordered(cell_results, quick)
        )
