"""Figure 11: CPU usage of compression + decompression, normalized to
ZRAM.

Paper numbers: Ariadne averages ~15% less codec CPU than ZRAM across
configurations; EHL helps most for hot-heavy apps (YouTube −25%,
Twitter −30%), while hot-poor apps (BangDream) can pay ~+3% for EHL
versus AL because more data is compressed with larger chunks.

Protocol: for each target app, run the steady-state relaunch cycle
(prepare target, let other apps run, relaunch target — twice) and
measure the compress+decompress CPU consumed during that cycle; the
launch phase is excluded (snapshot-diff), because it is identical setup
work for every scheme.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from .common import (
    FIGURE_APPS,
    build,
    measured_relaunch,
    render_table,
    scenario_for,
    scheme_matrix_cell,
    scheme_matrix_cells,
    workload_trace,
)
from .registry import Experiment, ExperimentResult, register


@dataclass
class Fig11Result(ExperimentResult):
    """Codec CPU normalized to ZRAM, per app per scheme column."""

    columns: list[str]
    normalized: dict[str, dict[str, float]]  # column -> app -> ratio

    @property
    def ariadne_mean_reduction(self) -> float:
        """Mean codec-CPU reduction of Ariadne columns vs ZRAM (paper ~15%)."""
        values = [
            ratio
            for column, per_app in self.normalized.items()
            if column.startswith("Ariadne")
            for ratio in per_app.values()
        ]
        return 1.0 - statistics.mean(values)

    def render(self) -> str:
        apps = list(self.normalized[self.columns[0]])
        rows = [
            [column] + [f"{self.normalized[column][app]:.2f}" for app in apps]
            for column in self.columns
        ]
        table = render_table(
            "Figure 11: comp+decomp CPU normalized to ZRAM",
            ["Scheme"] + apps,
            rows,
        )
        return (
            f"{table}\n"
            f"Ariadne mean reduction = {self.ariadne_mean_reduction:.0%} "
            f"(paper: ~15%)"
        )


def _codec_cpu_for_cycle(scheme_name: str, config, target: str, trace) -> int:
    """Codec CPU (ns) spent during the steady-state cycle for ``target``."""
    system = build(scheme_name, trace, config)
    system.launch_all()
    cpu = system.ctx.cpu
    before = cpu.activity_ns("compress") + cpu.activity_ns("decompress")
    scenario = scenario_for(scheme_name, config)
    pressure = [a for a in FIGURE_APPS if a != target][:2]
    for session in (1, 2):
        measured_relaunch(system, target, session, scenario, pressure)
    after = cpu.activity_ns("compress") + cpu.activity_ns("decompress")
    return after - before


@register
class Fig11(Experiment):
    """Normalized codec CPU for the paper's scheme matrix."""

    id = "fig11"
    title = "Comp+decomp CPU normalized to ZRAM"
    anchor = "Figure 11"
    sharded = True

    def cell_keys(self, quick: bool = False) -> list[str]:
        """Cell keys: the scheme matrix minus DRAM (no codec CPU at all)."""
        return [
            key for key, name, _ in scheme_matrix_cells(quick) if name != "DRAM"
        ]

    def run_cell(self, key: str, quick: bool = False) -> dict[str, int]:
        """Measure one scheme column: raw codec CPU (ns) per target app.

        Cells return *raw* nanoseconds; normalization against the ZRAM
        cell happens at merge time, which is what makes each cell
        independent.
        """
        scheme_name, config = scheme_matrix_cell(key, quick)
        apps = FIGURE_APPS[:2] if quick else FIGURE_APPS
        trace = workload_trace(n_apps=5)
        return {
            target: _codec_cpu_for_cycle(scheme_name, config, target, trace)
            for target in apps
        }

    def merge(
        self, cell_results: dict[str, dict[str, int]], quick: bool = False
    ) -> Fig11Result:
        """Normalize cell outputs against the ZRAM column, in matrix order.

        Columns absent from ``cell_results`` are simply omitted — except
        ZRAM, the normalization baseline, without which no column can be
        rendered at all.
        """
        if "ZRAM" not in cell_results:
            raise KeyError(
                "fig11.merge needs the ZRAM cell to normalize against; "
                f"got only {sorted(cell_results)}"
            )
        ordered = self._ordered(cell_results, quick)
        zram = cell_results["ZRAM"]
        normalized = {
            column: {
                app: per_app[app] / max(zram[app], 1) for app in per_app
            }
            for column, per_app in ordered.items()
        }
        return Fig11Result(columns=list(ordered), normalized=normalized)
