"""Figure 2: application relaunch latency under DRAM / ZRAM / SWAP.

Paper shape: ZRAM beats SWAP but still prolongs relaunch by ~2.1x over
reading everything from DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import RelaunchScenario
from .common import FIGURE_APPS, build, measured_relaunch, render_table, workload_trace


@dataclass
class Fig2Result:
    """Relaunch latency (ms) per app per scheme."""

    schemes: list[str]
    latency_ms: dict[str, dict[str, float]]  # scheme -> app -> ms

    @property
    def zram_over_dram(self) -> float:
        """Average ZRAM latency inflation over DRAM (paper: ~2.1x)."""
        ratios = [
            self.latency_ms["ZRAM"][app] / self.latency_ms["DRAM"][app]
            for app in self.latency_ms["DRAM"]
        ]
        return sum(ratios) / len(ratios)

    @property
    def swap_over_dram(self) -> float:
        """Average SWAP latency inflation over DRAM."""
        ratios = [
            self.latency_ms["SWAP"][app] / self.latency_ms["DRAM"][app]
            for app in self.latency_ms["DRAM"]
        ]
        return sum(ratios) / len(ratios)

    def render(self) -> str:
        apps = list(self.latency_ms["DRAM"])
        rows = [
            [scheme] + [f"{self.latency_ms[scheme][app]:.0f}" for app in apps]
            for scheme in self.schemes
        ]
        table = render_table(
            "Figure 2: relaunch latency (ms) under memory swap schemes",
            ["Scheme"] + apps,
            rows,
        )
        return (
            f"{table}\n"
            f"ZRAM/DRAM avg = {self.zram_over_dram:.2f}x (paper: 2.1x); "
            f"SWAP/DRAM avg = {self.swap_over_dram:.2f}x (paper: worse than ZRAM)"
        )


def run(quick: bool = False) -> Fig2Result:
    """Measure per-app relaunch latency for the three baseline schemes."""
    apps = FIGURE_APPS[:3] if quick else FIGURE_APPS
    trace = workload_trace(n_apps=5)
    schemes = ["DRAM", "ZRAM", "SWAP"]
    latency: dict[str, dict[str, float]] = {}
    for scheme_name in schemes:
        system = build(scheme_name, trace)
        system.launch_all()
        scenario = None if scheme_name == "DRAM" else RelaunchScenario.AL
        latency[scheme_name] = {}
        for target in apps:
            pressure = [a for a in apps if a != target][:2]
            result = measured_relaunch(system, target, 1, scenario, pressure)
            latency[scheme_name][target] = result.latency_ms
    return Fig2Result(schemes=schemes, latency_ms=latency)
