"""Figure 2: application relaunch latency under DRAM / ZRAM / SWAP.

Paper shape: ZRAM beats SWAP but still prolongs relaunch by ~2.1x over
reading everything from DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import RelaunchScenario
from .common import FIGURE_APPS, build, measured_relaunch, render_table, workload_trace
from .registry import Experiment, ExperimentResult, register


@dataclass
class Fig2Result(ExperimentResult):
    """Relaunch latency (ms) per app per scheme."""

    schemes: list[str]
    latency_ms: dict[str, dict[str, float]]  # scheme -> app -> ms

    @property
    def zram_over_dram(self) -> float:
        """Average ZRAM latency inflation over DRAM (paper: ~2.1x)."""
        ratios = [
            self.latency_ms["ZRAM"][app] / self.latency_ms["DRAM"][app]
            for app in self.latency_ms["DRAM"]
        ]
        return sum(ratios) / len(ratios)

    @property
    def swap_over_dram(self) -> float:
        """Average SWAP latency inflation over DRAM."""
        ratios = [
            self.latency_ms["SWAP"][app] / self.latency_ms["DRAM"][app]
            for app in self.latency_ms["DRAM"]
        ]
        return sum(ratios) / len(ratios)

    def render(self) -> str:
        apps = list(self.latency_ms["DRAM"])
        rows = [
            [scheme] + [f"{self.latency_ms[scheme][app]:.0f}" for app in apps]
            for scheme in self.schemes
        ]
        table = render_table(
            "Figure 2: relaunch latency (ms) under memory swap schemes",
            ["Scheme"] + apps,
            rows,
        )
        return (
            f"{table}\n"
            f"ZRAM/DRAM avg = {self.zram_over_dram:.2f}x (paper: 2.1x); "
            f"SWAP/DRAM avg = {self.swap_over_dram:.2f}x (paper: worse than ZRAM)"
        )


@register
class Fig2(Experiment):
    """Per-app relaunch latency for the three baseline schemes."""

    id = "fig2"
    title = "Relaunch latency under DRAM / ZRAM / SWAP"
    anchor = "Figure 2"
    sharded = True

    def cell_keys(self, quick: bool = False) -> list[str]:
        """Independently executable scheme cells (one system per scheme)."""
        return ["DRAM", "ZRAM", "SWAP"]

    def run_cell(self, key: str, quick: bool = False) -> dict[str, float]:
        """Measure one scheme's per-app relaunch latency (ms).

        A cell is one scheme: the system carries state across the target
        apps *within* a scheme (each relaunch restores pressure on the
        same system), but nothing crosses scheme boundaries, so cells
        are order-independent and safe on separate worker processes.
        """
        self._require_cell(key, quick)
        apps = FIGURE_APPS[:3] if quick else FIGURE_APPS
        trace = workload_trace(n_apps=5)
        system = build(key, trace)
        system.launch_all()
        scenario = None if key == "DRAM" else RelaunchScenario.AL
        column: dict[str, float] = {}
        for target in apps:
            pressure = [a for a in apps if a != target][:2]
            result = measured_relaunch(system, target, 1, scenario, pressure)
            column[target] = result.latency_ms
        return column

    def merge(
        self, cell_results: dict[str, dict[str, float]], quick: bool = False
    ) -> Fig2Result:
        """Assemble cell outputs into the figure, in scheme order."""
        ordered = self._ordered(cell_results, quick)
        return Fig2Result(schemes=list(ordered), latency_ms=ordered)
