"""Figure 3: CPU usage of the memory reclamation thread (kswapd).

Paper shape: ZRAM's kswapd burns ~2.6x the CPU of the DRAM baseline
(whose kswapd only writes file-backed pages back) and ~2.0x SWAP's.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import run_light_scenario
from .common import render_table, scenario_build, workload_trace
from .registry import Experiment, ExperimentResult, register


@dataclass
class Fig3Result(ExperimentResult):
    """kswapd CPU seconds over the 60 s light scenario."""

    kswapd_cpu_s: dict[str, float]

    @property
    def zram_over_dram(self) -> float:
        """ZRAM kswapd CPU relative to DRAM (paper: ~2.6x)."""
        return self.kswapd_cpu_s["ZRAM"] / max(self.kswapd_cpu_s["DRAM"], 1e-9)

    @property
    def zram_over_swap(self) -> float:
        """ZRAM kswapd CPU relative to SWAP (paper: ~2.0x)."""
        return self.kswapd_cpu_s["ZRAM"] / max(self.kswapd_cpu_s["SWAP"], 1e-9)

    def render(self) -> str:
        rows = [
            [scheme, f"{seconds:.2f}"]
            for scheme, seconds in self.kswapd_cpu_s.items()
        ]
        table = render_table(
            "Figure 3: kswapd CPU time over a 60 s switching scenario",
            ["Scheme", "kswapd CPU (s)"],
            rows,
        )
        return (
            f"{table}\n"
            f"ZRAM/DRAM = {self.zram_over_dram:.1f}x (paper: 2.6x); "
            f"ZRAM/SWAP = {self.zram_over_swap:.1f}x (paper: 2.0x)"
        )


@register
class Fig3(Experiment):
    """Reclaim-thread CPU under each baseline scheme."""

    id = "fig3"
    title = "kswapd CPU over the light switching scenario"
    anchor = "Figure 3"
    sharded = True

    def cell_keys(self, quick: bool = False) -> list[str]:
        """Independently executable scheme cells (one scenario per scheme)."""
        return ["DRAM", "ZRAM", "SWAP"]

    def run_cell(self, key: str, quick: bool = False) -> float:
        """Run the light switching scenario for one scheme; kswapd CPU (s).

        Each cell builds its own system from the shared deterministic
        trace, so cells are order-independent and safe on separate
        worker processes.
        """
        self._require_cell(key, quick)
        n_apps = 3 if quick else 5
        duration = 20.0 if quick else 60.0
        trace = workload_trace(n_apps=n_apps)
        system = scenario_build(key, trace)
        result = run_light_scenario(system, duration_s=duration)
        return result.kswapd_cpu_ns / 1e9

    def merge(
        self, cell_results: dict[str, float], quick: bool = False
    ) -> Fig3Result:
        """Assemble cell outputs into the figure, in scheme order."""
        return Fig3Result(kswapd_cpu_s=self._ordered(cell_results, quick))
