"""Figure 3: CPU usage of the memory reclamation thread (kswapd).

Paper shape: ZRAM's kswapd burns ~2.6x the CPU of the DRAM baseline
(whose kswapd only writes file-backed pages back) and ~2.0x SWAP's.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import run_light_scenario
from .common import render_table, scenario_build, workload_trace


@dataclass
class Fig3Result:
    """kswapd CPU seconds over the 60 s light scenario."""

    kswapd_cpu_s: dict[str, float]

    @property
    def zram_over_dram(self) -> float:
        """ZRAM kswapd CPU relative to DRAM (paper: ~2.6x)."""
        return self.kswapd_cpu_s["ZRAM"] / max(self.kswapd_cpu_s["DRAM"], 1e-9)

    @property
    def zram_over_swap(self) -> float:
        """ZRAM kswapd CPU relative to SWAP (paper: ~2.0x)."""
        return self.kswapd_cpu_s["ZRAM"] / max(self.kswapd_cpu_s["SWAP"], 1e-9)

    def render(self) -> str:
        rows = [
            [scheme, f"{seconds:.2f}"]
            for scheme, seconds in self.kswapd_cpu_s.items()
        ]
        table = render_table(
            "Figure 3: kswapd CPU time over a 60 s switching scenario",
            ["Scheme", "kswapd CPU (s)"],
            rows,
        )
        return (
            f"{table}\n"
            f"ZRAM/DRAM = {self.zram_over_dram:.1f}x (paper: 2.6x); "
            f"ZRAM/SWAP = {self.zram_over_swap:.1f}x (paper: 2.0x)"
        )


def run(quick: bool = False) -> Fig3Result:
    """Run the light switching scenario under each baseline scheme and
    compare reclaim-thread CPU."""
    n_apps = 3 if quick else 5
    duration = 20.0 if quick else 60.0
    kswapd: dict[str, float] = {}
    for scheme_name in ("DRAM", "ZRAM", "SWAP"):
        trace = workload_trace(n_apps=n_apps)
        system = scenario_build(scheme_name, trace)
        result = run_light_scenario(system, duration_s=duration)
        kswapd[scheme_name] = result.kswapd_cpu_ns / 1e9
    return Fig3Result(kswapd_cpu_s=kswapd)
