"""Figure 14: coverage and accuracy of hot-data identification.

Paper numbers: HotnessOrg's hot list covers ~70% of the data a relaunch
actually uses (Coverage), and ~92% of what it keeps in the hot list is
used by the next relaunch or execution phase (Accuracy).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from ..core import AriadneConfig, AriadneScheme, RelaunchScenario
from .common import FIGURE_APPS, build, render_table, workload_trace
from .registry import Experiment, ExperimentResult, register


@dataclass
class Fig14Result(ExperimentResult):
    """Mean coverage/accuracy per app across measured relaunches."""

    coverage: dict[str, float]
    accuracy: dict[str, float]

    @property
    def mean_coverage(self) -> float:
        """Across-app mean (paper: ~0.70)."""
        return statistics.mean(self.coverage.values())

    @property
    def mean_accuracy(self) -> float:
        """Across-app mean (paper: ~0.92)."""
        return statistics.mean(self.accuracy.values())

    def render(self) -> str:
        rows = [
            [app, f"{self.coverage[app]:.2f}", f"{self.accuracy[app]:.2f}"]
            for app in self.coverage
        ]
        table = render_table(
            "Figure 14: hot-data identification quality",
            ["App", "Coverage", "Accuracy"],
            rows,
        )
        return (
            f"{table}\n"
            f"mean coverage = {self.mean_coverage:.2f} (paper: ~0.70); "
            f"mean accuracy = {self.mean_accuracy:.2f} (paper: ~0.92)"
        )


@register
class Fig14(Experiment):
    """Ariadne's hot list scored against what relaunches actually use."""

    id = "fig14"
    title = "Hot-data identification coverage and accuracy"
    anchor = "Figure 14"

    def compute(self, quick: bool = False) -> Fig14Result:
        """Score Ariadne's hot list against what relaunches actually use."""
        apps = FIGURE_APPS[:3] if quick else FIGURE_APPS
        sessions = 3 if quick else 4
        trace = workload_trace(n_apps=5, sessions=max(sessions, 4))
        config = AriadneConfig(scenario=RelaunchScenario.EHL)
        system = build("Ariadne", trace, config)
        system.launch_all()
        scheme = system.scheme
        assert isinstance(scheme, AriadneScheme)
        coverage: dict[str, list[float]] = {app: [] for app in apps}
        accuracy: dict[str, list[float]] = {app: [] for app in apps}
        for session_index in range(1, sessions):
            for app_name in apps:
                app_trace = trace.app(app_name)
                session = app_trace.sessions[session_index]
                predicted = scheme.hot_prediction(app_trace.uid)
                actual_hot = set(session.hot_set)
                used_next = actual_hot | set(session.warm_set)
                if actual_hot:
                    coverage[app_name].append(
                        len(predicted & actual_hot) / len(actual_hot)
                    )
                if predicted:
                    accuracy[app_name].append(
                        len(predicted & used_next) / len(predicted)
                    )
                system.relaunch(app_name, session_index)
        return Fig14Result(
            coverage={app: statistics.mean(v) for app, v in coverage.items()},
            accuracy={app: statistics.mean(v) for app, v in accuracy.items()},
        )
