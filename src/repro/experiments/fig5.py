"""Figure 5: Hot Data Similarity and Reused Data between consecutive
relaunches.

Paper numbers: similarity averages ~70% and reuse ~98% across apps.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from ..trace.analyze import hot_similarity_series, reused_fraction_series
from .common import FIGURE_APPS, render_table, workload_trace
from .registry import Experiment, ExperimentResult, register


@dataclass
class Fig5Result(ExperimentResult):
    """Per-app mean similarity and reuse across consecutive relaunches."""

    similarity: dict[str, float]
    reuse: dict[str, float]

    @property
    def mean_similarity(self) -> float:
        """Across-app average (paper: ~0.70)."""
        return statistics.mean(self.similarity.values())

    @property
    def mean_reuse(self) -> float:
        """Across-app average (paper: ~0.98)."""
        return statistics.mean(self.reuse.values())

    def render(self) -> str:
        rows = [
            [app, f"{self.similarity[app]:.2f}", f"{self.reuse[app]:.2f}"]
            for app in self.similarity
        ]
        table = render_table(
            "Figure 5: hot-data similarity and reuse between relaunches",
            ["App", "Hot Data Similarity", "Reused Data"],
            rows,
        )
        return (
            f"{table}\n"
            f"mean similarity = {self.mean_similarity:.2f} (paper: 0.70); "
            f"mean reuse = {self.mean_reuse:.2f} (paper: 0.98)"
        )


@register
class Fig5(Experiment):
    """The paper's two trace metrics over the generated workload."""

    id = "fig5"
    title = "Hot-data similarity and reuse between relaunches"
    anchor = "Figure 5"

    def compute(self, quick: bool = False) -> Fig5Result:
        """Score the generated traces with the paper's two metrics."""
        apps = FIGURE_APPS[:3] if quick else FIGURE_APPS
        trace = workload_trace(n_apps=5, sessions=5)
        similarity = {}
        reuse = {}
        for name in apps:
            app_trace = trace.app(name)
            similarity[name] = statistics.mean(hot_similarity_series(app_trace))
            reuse[name] = statistics.mean(reused_fraction_series(app_trace))
        return Fig5Result(similarity=similarity, reuse=reuse)
