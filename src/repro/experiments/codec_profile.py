"""Trace-fed codec profiling shared by Figures 12, 13 and 15.

The paper feeds the collected page data to the compression algorithms
under each scheme's chunk-size policy and reports total compression
latency, total decompression latency, and compression ratio
(Section 5: "we use the collected page data in traces as the input of
compression and decompression algorithms").  This module reproduces that
methodology:

- ZRAM compresses every swapped page at 4 KB and decompresses the data
  read back during relaunch and execution (hot + warm);
- Ariadne compresses per hotness level (hot -> SmallSize,
  warm -> MediumSize, cold grouped into LargeSize chunks); under EHL the
  hot set stays uncompressed, so neither its compression nor its
  decompression is ever paid.

Hotness labels come from the trace's ground truth; Figure 14 shows the
online identification is ~92% accurate, so this is a close proxy (and
identical across schemes, which is what the comparison needs).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compression import Compressor, LatencyModel, get_compressor
from ..compression.chunking import SizeCache
from ..core import AriadneConfig, RelaunchScenario
from ..mem.page import Hotness
from ..trace.records import AppTrace
from ..units import PAGE_SIZE, SCALE_FACTOR

#: Pages sampled per hotness segment when measuring real compressed
#: sizes (ratios are averages; sampling keeps the sweep fast).
_RATIO_SAMPLE_PAGES = 192


@dataclass(frozen=True)
class CodecProfile:
    """Totals for one (app, scheme) pairing, at paper scale."""

    scheme: str
    app: str
    comp_ms: float
    decomp_ms: float
    ratio: float


def _segments(app_trace: AppTrace) -> dict[Hotness, list[bytes]]:
    """Group the app's page payloads by ground-truth hotness."""
    grouped: dict[Hotness, list[bytes]] = {h: [] for h in Hotness}
    for record in app_trace.pages:
        grouped[record.true_hotness].append(record.payload)
    return grouped


def _chunk_plan(
    config: AriadneConfig | None,
) -> dict[Hotness, int | None]:
    """Chunk size per hotness level; ``None`` means "not compressed"."""
    if config is None:  # ZRAM: single-page chunks for everything
        return {h: PAGE_SIZE for h in Hotness}
    plan: dict[Hotness, int | None] = {
        Hotness.HOT: config.small_size,
        Hotness.WARM: config.medium_size,
        Hotness.COLD: config.large_size,
    }
    if config.scenario is RelaunchScenario.EHL:
        plan[Hotness.HOT] = None
    return plan


def _stored_bytes(
    payloads: list[bytes],
    chunk_size: int,
    codec: Compressor,
    cache: SizeCache,
) -> tuple[int, int]:
    """(original, stored) bytes for a sampled segment at ``chunk_size``."""
    if not payloads:
        return 0, 0
    step = max(1, len(payloads) // _RATIO_SAMPLE_PAGES)
    sample = payloads[::step][:_RATIO_SAMPLE_PAGES]
    group_pages = max(1, chunk_size // PAGE_SIZE)
    original = 0
    stored = 0
    for start in range(0, len(sample), group_pages):
        blob = b"".join(sample[start : start + group_pages])
        original += len(blob)
        stored += cache.compressed_size(codec, blob, chunk_size)
    # Extrapolate the sample back to the full segment.
    total_original = len(payloads) * PAGE_SIZE
    if original == 0:
        return 0, 0
    return total_original, round(stored * total_original / original)


def sweep_cell_keys(
    schemes: tuple[AriadneConfig | None, ...],
) -> list[str]:
    """Cell keys for a codec-sweep experiment: one per scheme config.

    Shared by fig12/fig13 (each module keeps its own ``SCHEMES`` tuple
    but the sharded-cell plumbing is identical): the key is the
    rendered column label — ``ZRAM`` for the ``None`` baseline, the
    config label otherwise — stable across processes and runs.
    """
    return [
        "ZRAM" if config is None else config.label for config in schemes
    ]


def sweep_cell(
    schemes: tuple[AriadneConfig | None, ...],
    key: str,
    app_traces: list[AppTrace],
    cache: SizeCache,
) -> list[CodecProfile]:
    """Run one codec-sweep cell: profile every app under ``key``'s config.

    Each (config, app) profile is an independent pure computation over
    the shared deterministic trace, so cells are order-independent and
    safe on separate worker processes.
    """
    for config in schemes:
        if ("ZRAM" if config is None else config.label) == key:
            break
    else:
        raise KeyError(f"unknown codec-sweep cell {key!r}")
    codec = get_compressor("lzo")
    model = LatencyModel()
    return [
        profile_app(app_trace, config, codec, model, cache)
        for app_trace in app_traces
    ]


def sweep_merge(
    schemes: tuple[AriadneConfig | None, ...],
    cell_results: dict[str, list[CodecProfile]],
) -> list[CodecProfile]:
    """Concatenate cell outputs in scheme order (the serial row order)."""
    return [
        profile
        for key in sweep_cell_keys(schemes)
        if key in cell_results
        for profile in cell_results[key]
    ]


def profile_app(
    app_trace: AppTrace,
    config: AriadneConfig | None,
    codec: Compressor,
    model: LatencyModel,
    cache: SizeCache,
) -> CodecProfile:
    """Compression/decompression latency and ratio for one scheme."""
    plan = _chunk_plan(config)
    segments = _segments(app_trace)
    comp_ns = 0
    decomp_ns = 0
    total_original = 0
    total_stored = 0
    for level, payloads in segments.items():
        chunk_size = plan[level]
        if chunk_size is None or not payloads:
            continue
        nbytes = len(payloads) * PAGE_SIZE
        comp_ns += model.compress_ns(codec.name, nbytes, chunk_size)
        if level in (Hotness.HOT, Hotness.WARM):
            # Hot data is read back at relaunch, warm during execution;
            # cold is written once and almost never read (Section 4.3).
            decomp_ns += model.decompress_ns(codec.name, nbytes, chunk_size)
        original, stored = _stored_bytes(payloads, chunk_size, codec, cache)
        total_original += original
        total_stored += stored
    scheme = config.label if config is not None else "ZRAM"
    ratio = total_original / total_stored if total_stored else 0.0
    return CodecProfile(
        scheme=scheme,
        app=app_trace.name,
        comp_ms=comp_ns * SCALE_FACTOR / 1e6,
        decomp_ms=decomp_ns * SCALE_FACTOR / 1e6,
        ratio=ratio,
    )
