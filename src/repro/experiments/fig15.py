"""Figure 15: sensitivity to compression chunk-size configuration.

The paper contrasts two extreme Ariadne configurations against ZRAM:

- ``Ariadne-AL-1K-4K-64K`` — very large cold chunks: best ratio, but a
  misclassified page decompresses a 64 KB chunk (long latency risk);
- ``Ariadne-AL-256-1K-4K`` — very small chunks everywhere: fastest
  decompression, weakest ratio.

The takeaway (Section 6.3): inappropriate sizes either inflate latency
or deflate ratio, and >= 64 KB cold chunks are risky.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compression import LatencyModel, get_compressor
from ..core import AriadneConfig, RelaunchScenario
from ..units import KIB
from .common import FIGURE_APPS, _SHARED_SIZES, render_table, workload_trace
from .codec_profile import CodecProfile, profile_app
from .registry import Experiment, ExperimentResult, register

SCHEMES: tuple[AriadneConfig | None, ...] = (
    None,  # ZRAM
    AriadneConfig(small_size=1 * KIB, medium_size=4 * KIB, large_size=64 * KIB,
                  scenario=RelaunchScenario.AL),
    AriadneConfig(small_size=256, medium_size=1 * KIB, large_size=4 * KIB,
                  scenario=RelaunchScenario.AL),
)


@dataclass
class Fig15Result(ExperimentResult):
    """Comp/decomp latency and ratio for the sensitivity configs."""

    profiles: list[CodecProfile]

    def by_scheme(self, scheme: str) -> list[CodecProfile]:
        return [p for p in self.profiles if p.scheme == scheme]

    def mean_ratio(self, scheme: str) -> float:
        entries = self.by_scheme(scheme)
        return sum(p.ratio for p in entries) / len(entries)

    def render(self) -> str:
        rows = [
            [
                p.scheme,
                p.app,
                f"{p.comp_ms:.0f}",
                f"{p.decomp_ms:.0f}",
                f"{p.ratio:.2f}",
            ]
            for p in self.profiles
        ]
        table = render_table(
            "Figure 15: sensitivity to chunk-size configuration",
            ["Scheme", "App", "CompTime (ms)", "DecompTime (ms)", "Ratio"],
            rows,
        )
        big = SCHEMES[1].label
        small = SCHEMES[2].label
        return (
            f"{table}\n"
            f"mean ratio: ZRAM {self.mean_ratio('ZRAM'):.2f}, "
            f"{big} {self.mean_ratio(big):.2f} (best ratio), "
            f"{small} {self.mean_ratio(small):.2f} (fastest, weakest ratio)"
        )


@register
class Fig15(Experiment):
    """The two extreme chunk-size configurations of Section 6.3."""

    id = "fig15"
    title = "Sensitivity to chunk-size configuration"
    anchor = "Figure 15"

    def compute(self, quick: bool = False) -> Fig15Result:
        """Profile the two extreme configurations of Section 6.3."""
        apps = FIGURE_APPS[:3] if quick else FIGURE_APPS
        trace = workload_trace(n_apps=5)
        codec = get_compressor("lzo")
        model = LatencyModel()
        cache = _SHARED_SIZES
        profiles = []
        for config in SCHEMES:
            for app_name in apps:
                profiles.append(
                    profile_app(trace.app(app_name), config, codec, model, cache)
                )
        return Fig15Result(profiles=profiles)
