"""Setup shim for environments without PEP 517 build isolation.

All real metadata lives in ``pyproject.toml``; this file only exists so
``pip install -e . --no-use-pep517`` works on machines whose setuptools
cannot build wheels (e.g. offline boxes without the ``wheel`` package).
"""

from setuptools import setup

setup()
